// Command ascoma-trace records workload reference traces to files and runs
// simulations from them. Traces freeze the exact reference streams, so a
// configuration can be re-simulated bit-identically across generator
// changes, diffed, or produced by external tools (the format is documented
// in internal/workload.Trace).
//
// Usage:
//
//	ascoma-trace record -workload radix -scale 8 -o radix.trace
//	ascoma-trace run -trace radix.trace -arch ascoma -pressure 70
//	ascoma-trace info -trace radix.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"ascoma"
	"ascoma/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "run":
		runTrace(os.Args[2:])
	case "info":
		info(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: ascoma-trace record|run|info [flags]")
	os.Exit(2)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ascoma-trace:", err)
	os.Exit(1)
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	wl := fs.String("workload", "radix", "workload to record")
	scale := fs.Int("scale", 8, "problem-size divisor")
	out := fs.String("o", "", "output file (default <workload>.trace)")
	fs.Parse(args)

	gen, err := workload.New(*wl, *scale)
	if err != nil {
		fail(err)
	}
	tr := workload.Record(gen)
	path := *out
	if path == "" {
		path = *wl + ".trace"
	}
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	if err := tr.Encode(f); err != nil {
		fail(err)
	}
	var refs int
	for _, r := range tr.Refs {
		refs += len(r)
	}
	fmt.Printf("recorded %s: %d nodes, %d placed pages, %d references -> %s\n",
		*wl, tr.NumNodes, len(tr.Placement), refs, path)
}

func loadTrace(path string) *workload.Trace {
	f, err := os.Open(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	tr, err := workload.Decode(f)
	if err != nil {
		fail(err)
	}
	return tr
}

func runTrace(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	path := fs.String("trace", "", "trace file to replay (required)")
	arch := fs.String("arch", "ascoma", "architecture")
	pressure := fs.Int("pressure", 50, "memory pressure percent")
	fs.Parse(args)
	if *path == "" {
		fail(fmt.Errorf("-trace is required"))
	}
	a, err := ascoma.ParseArch(*arch)
	if err != nil {
		fail(err)
	}
	res, err := ascoma.RunGenerator(ascoma.Config{Arch: a, Pressure: *pressure}, loadTrace(*path))
	if err != nil {
		fail(err)
	}
	fmt.Print(res.Report())
}

func info(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	path := fs.String("trace", "", "trace file (required)")
	fs.Parse(args)
	if *path == "" {
		fail(fmt.Errorf("-trace is required"))
	}
	tr := loadTrace(*path)
	fmt.Printf("trace %q: %d nodes, %d home pages/node, %d private pages/node\n",
		tr.TraceName, tr.NumNodes, tr.HomePages, tr.PrivPages)
	fmt.Printf("placed pages: %d\n", len(tr.Placement))
	for n, refs := range tr.Refs {
		reads, writes, barriers := 0, 0, 0
		for _, r := range refs {
			switch r.Op {
			case workload.Read:
				reads++
			case workload.Write:
				writes++
			case workload.Barrier:
				barriers++
			}
		}
		fmt.Printf("  node %d: %d refs (%d reads, %d writes, %d barriers)\n",
			n, len(refs), reads, writes, barriers)
	}
}
