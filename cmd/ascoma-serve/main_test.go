package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ascoma/internal/runcache"
)

func newTestServer(t *testing.T) (*server, *httptest.Server) {
	t.Helper()
	cache, err := runcache.New(64, "")
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(cache, 4, 1, time.Minute)
	ts := httptest.NewServer(s.handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Errorf("healthz: %d %q", resp.StatusCode, body)
	}
}

func TestRunEndpoint(t *testing.T) {
	s, ts := newTestServer(t)
	post := func() map[string]any {
		resp, err := http.Post(ts.URL+"/api/v1/run", "application/json",
			strings.NewReader(`{"arch":"AS-COMA","workload":"uniform","pressure":70,"scale":32}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("run: %d %s", resp.StatusCode, body)
		}
		var out map[string]any
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatalf("run response not JSON: %v\n%s", err, body)
		}
		return out
	}
	out := post()
	result, ok := out["result"].(map[string]any)
	if !ok {
		t.Fatalf("response missing result: %v", out)
	}
	if result["arch"] != "AS-COMA" || result["workload"] != "uniform" {
		t.Errorf("result echo wrong: arch=%v workload=%v", result["arch"], result["workload"])
	}
	if exec, ok := result["execTimeCycles"].(float64); !ok || exec <= 0 {
		t.Errorf("execTimeCycles = %v", result["execTimeCycles"])
	}

	// An identical request is a pure cache hit: no new simulation.
	sims := s.cache.Stats().Sims
	post()
	if got := s.cache.Stats().Sims; got != sims {
		t.Errorf("repeat request simulated %d new runs", got-sims)
	}
	if st := s.cache.Stats(); st.MemHits == 0 {
		t.Errorf("no memory hit recorded: %+v", st)
	}
}

func TestRunEndpointValidation(t *testing.T) {
	_, ts := newTestServer(t)
	for _, body := range []string{
		`{"arch":"NOPE","workload":"uniform","pressure":50}`,
		`{"arch":"AS-COMA","workload":"nonexistent","pressure":50}`,
		`{"arch":"AS-COMA","workload":"uniform","pressure":0}`,
		`not json`,
	} {
		resp, err := http.Post(ts.URL+"/api/v1/run", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
}

func TestFigureEndpoint(t *testing.T) {
	s, ts := newTestServer(t)
	url := ts.URL + "/api/v1/figure/uniform?scale=16&pressures=10,90&format=csv"
	get := func() string {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("figure: %d %s", resp.StatusCode, body)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/csv") {
			t.Errorf("content type %q", ct)
		}
		return string(body)
	}
	first := get()
	if !strings.HasPrefix(first, "config,total,") {
		t.Errorf("csv body: %q", first)
	}
	sims := s.cache.Stats().Sims
	if sims == 0 {
		t.Fatal("figure render hit an empty cache")
	}
	second := get()
	if got := s.cache.Stats().Sims; got != sims {
		t.Errorf("repeat figure simulated %d new runs", got-sims)
	}
	if first != second {
		t.Error("cached figure differs from fresh figure")
	}

	resp, err := http.Get(ts.URL + "/api/v1/figure/nonexistent")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown app: status %d, want 400", resp.StatusCode)
	}
}

func TestExpvarExposed(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug/vars: %d", resp.StatusCode)
	}
	var vars map[string]any
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("expvar output not JSON: %v", err)
	}
	for _, key := range []string{"ascoma_cache", "ascoma_inflight_runs", "ascoma_runs"} {
		if _, ok := vars[key]; !ok {
			t.Errorf("expvar missing %s", key)
		}
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	// Drive one run so the request counters are live.
	resp, err := http.Post(ts.URL+"/api/v1/run", "application/json",
		strings.NewReader(`{"arch":"CC-NUMA","workload":"uniform","pressure":70,"scale":32}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	for _, want := range []string{
		"# TYPE ascoma_requests_total counter",
		`ascoma_requests_total{arch="CC-NUMA"} 1`,
		"ascoma_request_seconds_count 1",
		"ascoma_runcache_sims_total 1",
		"ascoma_inflight_runs 0",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}

func TestSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke covered by endpoint tests")
	}
	cache, err := runcache.New(64, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := runSmoke(newServer(cache, 4, 1, time.Minute)); err != nil {
		t.Fatal(err)
	}
}

func TestPprofGating(t *testing.T) {
	// Off by default: the profiling endpoints must not be reachable.
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof disabled: GET /debug/pprof/ = %d, want 404", resp.StatusCode)
	}

	*pprofOn = true
	defer func() { *pprofOn = false }()
	_, ts2 := newTestServer(t)
	resp, err = http.Get(ts2.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Errorf("pprof enabled: GET /debug/pprof/ = %d %q", resp.StatusCode, body)
	}
}
