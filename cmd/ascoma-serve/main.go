// Command ascoma-serve exposes the simulator as an HTTP service backed by
// the shared run-orchestration layer: a bounded worker pool, a tiered
// content-addressed result cache (memory LRU, optional -cachedir disk
// layer, optional -peers HTTP workers sharing the store), per-request
// timeouts, an async job farm, and graceful drain on SIGTERM/SIGINT.
//
// Endpoints:
//
//	POST   /api/v1/run             {"arch":"AS-COMA","workload":"radix","pressure":70,"scale":8}
//	GET    /api/v1/figure/{app}    ?format=table|csv|chart&pressures=10,90&scale=8
//	POST   /api/v1/jobs            {"run":{...}} | {"grid":{...}} | {"figure":{...}} -> 202 + job id
//	GET    /api/v1/jobs/{id}       poll status/result
//	GET    /api/v1/jobs/{id}/events  NDJSON stream: cell completions, epoch probes, terminal state
//	DELETE /api/v1/jobs/{id}       cancel
//	GET    /cache/v1/{key}         peer protocol: serve this worker's cached results
//	GET    /healthz
//	GET    /metrics                Prometheus text exposition
//	GET    /debug/vars             per-server expvar shim (legacy consumers)
//	GET    /debug/pprof/...        live profiling; only registered with -pprof
//
// Identical concurrent requests collapse onto one simulation — including
// across workers: a request for a key a peer is already simulating waits
// for that peer's fill through the /cache/v1 protocol.
//
//	ascoma-serve -addr :8372 -cachedir /var/cache/ascoma -jobs 8
//	ascoma-serve -peers http://10.0.0.7:8372,http://10.0.0.8:8372
//	ascoma-serve -smoke      # self-test: start, probe every surface, drain, exit
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"ascoma/internal/runcache"
	"ascoma/internal/serve"
)

var (
	addr       = flag.String("addr", "127.0.0.1:8372", "listen address")
	cacheDir   = flag.String("cachedir", "", "persist simulation results in this directory")
	cacheSize  = flag.Int("cachesize", 1024, "in-memory result cache entries")
	peers      = flag.String("peers", "", "comma-separated base URLs of peer workers sharing the result store")
	jobs       = flag.Int("jobs", runtime.NumCPU(), "maximum concurrent simulations")
	cores      = flag.Int("cores", 1, "worker threads inside each simulation (results are bit-identical at any count)")
	reqTimeout = flag.Duration("timeout", 5*time.Minute, "per-request simulation timeout")
	drainWait  = flag.Duration("drain", 15*time.Second, "graceful shutdown drain budget")
	smoke      = flag.Bool("smoke", false, "self-test: serve on a random port, probe the endpoints, drain, exit")
	pprofOn    = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (off by default: profiling endpoints leak runtime detail)")
)

func buildCache() (*runcache.Cache, error) {
	var backends []runcache.Backend
	if *cacheDir != "" {
		disk, err := runcache.NewDiskBackend(*cacheDir)
		if err != nil {
			return nil, err
		}
		backends = append(backends, disk)
	}
	for _, p := range strings.Split(*peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			backends = append(backends, runcache.NewHTTPBackend(p, &http.Client{Timeout: 30 * time.Second}))
		}
	}
	return runcache.NewWithBackends(*cacheSize, backends...), nil
}

func main() {
	flag.Parse()

	cache, err := buildCache()
	if err != nil {
		log.Fatal(err)
	}
	s := serve.New(serve.Config{
		Cache:   cache,
		Jobs:    *jobs,
		Cores:   *cores,
		Timeout: *reqTimeout,
		Pprof:   *pprofOn,
	})

	if *smoke {
		if err := serve.Smoke(s); err != nil {
			log.Fatalf("smoke: %v", err)
		}
		fmt.Println("ascoma-serve smoke ok:", cache.Stats())
		return
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("ascoma-serve listening on %s (jobs=%d cache=%d entries, dir=%q, peers=%q)",
			*addr, *jobs, *cacheSize, *cacheDir, *peers)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Printf("ascoma-serve draining (up to %v)...", *drainWait)
	dctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		log.Fatalf("drain: %v", err)
	}
	s.Close()
	log.Printf("ascoma-serve stopped; cache %s", cache.Stats())
}
