// Command ascoma-serve exposes the simulator as an HTTP service backed by
// the shared run-orchestration layer: a bounded worker pool, a
// content-addressed result cache (optionally persisted with -cachedir),
// per-request timeouts, and graceful drain on SIGTERM/SIGINT.
//
// Endpoints:
//
//	POST /api/v1/run          {"arch":"AS-COMA","workload":"radix","pressure":70,"scale":8}
//	GET  /api/v1/figure/{app} ?format=table|csv|chart&pressures=10,90&scale=8
//	GET  /healthz
//	GET  /metrics             Prometheus text exposition: request counts and
//	                          latency, in-flight runs, run-cache hit counters
//	GET  /debug/vars          expvar shim over the same metrics (legacy consumers)
//	GET  /debug/pprof/...     live profiling; only registered with -pprof
//
// Identical concurrent requests collapse onto one simulation
// (singleflight), and repeated requests are served from the cache.
//
//	ascoma-serve -addr :8372 -cachedir /var/cache/ascoma -jobs 8
//	ascoma-serve -pprof      # expose net/http/pprof for live CPU/heap profiles
//	ascoma-serve -smoke      # self-test: start, probe, drain, exit
package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"slices"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"ascoma"
	"ascoma/internal/obs"
	"ascoma/internal/report"
	"ascoma/internal/runcache"
	"ascoma/internal/stats"
)

var (
	addr       = flag.String("addr", "127.0.0.1:8372", "listen address")
	cacheDir   = flag.String("cachedir", "", "persist simulation results in this directory")
	cacheSize  = flag.Int("cachesize", 1024, "in-memory result cache entries")
	jobs       = flag.Int("jobs", runtime.NumCPU(), "maximum concurrent simulations")
	cores      = flag.Int("cores", 1, "worker threads inside each simulation (results are bit-identical at any count)")
	reqTimeout = flag.Duration("timeout", 5*time.Minute, "per-request simulation timeout")
	drainWait  = flag.Duration("drain", 15*time.Second, "graceful shutdown drain budget")
	smoke      = flag.Bool("smoke", false, "self-test: serve on a random port, probe the endpoints, drain, exit")
	pprofOn    = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (off by default: profiling endpoints leak runtime detail)")
)

// server holds the orchestration layer and the request-level metrics. The
// metrics live on an obs.Registry (served at /metrics in Prometheus text
// form); /debug/vars remains as an expvar shim reading the same counters.
type server struct {
	runner  *runcache.Runner
	cache   *runcache.Cache
	timeout time.Duration
	cores   int

	reg        *obs.Registry
	archRuns   *obs.CounterVec // completed requests by architecture (+ "figure")
	archNanos  *obs.CounterVec // cumulative request latency by architecture
	runSeconds *obs.Histogram  // request latency distribution
}

func newServer(cache *runcache.Cache, jobs, cores int, timeout time.Duration) *server {
	runner := &runcache.Runner{Cache: cache, Jobs: jobs}
	reg := obs.NewRegistry()
	s := &server{
		runner:  runner,
		cache:   cache,
		timeout: timeout,
		cores:   cores,
		reg:     reg,
		archRuns: reg.NewCounterVec("ascoma_requests_total",
			"Completed simulation requests by architecture (figure renders count as \"figure\").", "arch"),
		archNanos: reg.NewCounterVec("ascoma_request_nanos_total",
			"Cumulative request latency in nanoseconds by architecture.", "arch"),
		runSeconds: reg.NewHistogram("ascoma_request_seconds",
			"Request latency in seconds (cache hits and fresh simulations alike).", nil),
	}
	reg.NewGaugeFunc("ascoma_inflight_runs",
		"Simulations currently executing (cache hits never count).",
		func() float64 { return float64(runner.InFlight()) })
	cache.Publish(reg)
	return s
}

// publishVars registers the expvar shim: the same keys the service exposed
// before the obs registry existed, now reading through it. Guarded for the
// tests, which build several servers per process; the first server's
// closures win, matching the one-server-per-process deployment.
var publishOnce sync.Once

func (s *server) publishVars() {
	publishOnce.Do(func() {
		expvar.Publish("ascoma_cache", expvar.Func(func() any { return s.cache.Stats() }))
		expvar.Publish("ascoma_inflight_runs", expvar.Func(func() any { return s.runner.InFlight() }))
		expvar.Publish("ascoma_runs", expvar.Func(func() any { return s.archRuns.Snapshot() }))
		expvar.Publish("ascoma_run_nanos", expvar.Func(func() any { return s.archNanos.Snapshot() }))
	})
}

func (s *server) handler() http.Handler {
	s.publishVars()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n") //nolint:errcheck // client-side failure
	})
	mux.Handle("GET /metrics", s.reg.Handler())
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("POST /api/v1/run", s.handleRun)
	mux.HandleFunc("GET /api/v1/figure/{app}", s.handleFigure)
	if *pprofOn {
		// The mux is not DefaultServeMux, so the handlers the pprof
		// import registers there are unreachable; wire them explicitly.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// runRequest is the POST /api/v1/run body.
type runRequest struct {
	Arch           string `json:"arch"`
	Workload       string `json:"workload"`
	Pressure       int    `json:"pressure"`
	Scale          int    `json:"scale"`
	MaxCycles      int64  `json:"maxCycles"`
	SampleInterval int64  `json:"sampleInterval"`
}

// runResponse wraps the flattened statistics report.
type runResponse struct {
	Result  stats.JSONReport `json:"result"`
	Samples []ascoma.Sample  `json:"samples,omitempty"`
}

func (s *server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req runRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	arch, err := ascoma.ParseArch(req.Arch)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if !slices.Contains(ascoma.Workloads(), req.Workload) {
		http.Error(w, fmt.Sprintf("unknown workload %q (registered: %s)",
			req.Workload, strings.Join(ascoma.Workloads(), ", ")), http.StatusBadRequest)
		return
	}
	if req.Pressure < 1 || req.Pressure > 99 {
		http.Error(w, fmt.Sprintf("pressure %d out of range [1,99]", req.Pressure), http.StatusBadRequest)
		return
	}
	cfg := ascoma.Config{
		Arch:           arch,
		Workload:       req.Workload,
		Pressure:       req.Pressure,
		Scale:          req.Scale,
		MaxCycles:      req.MaxCycles,
		SampleInterval: req.SampleInterval,
		Cores:          s.cores,
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
	defer cancel()
	start := time.Now()
	res, err := s.runner.Run(ctx, cfg)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, context.DeadlineExceeded) {
			status = http.StatusGatewayTimeout
		}
		http.Error(w, err.Error(), status)
		return
	}
	elapsed := time.Since(start)
	s.archRuns.With(arch.String()).Inc()
	s.archNanos.With(arch.String()).Add(elapsed.Nanoseconds())
	s.runSeconds.Observe(elapsed.Seconds())

	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(runResponse{Result: stats.Report(res.Machine), Samples: res.Samples}); err != nil {
		log.Printf("run response: %v", err)
	}
}

func (s *server) handleFigure(w http.ResponseWriter, r *http.Request) {
	app := r.PathValue("app")
	if !slices.Contains(ascoma.Workloads(), app) {
		http.Error(w, fmt.Sprintf("unknown workload %q (registered: %s)",
			app, strings.Join(ascoma.Workloads(), ", ")), http.StatusBadRequest)
		return
	}
	q := r.URL.Query()
	opts := report.Options{Runner: s.runner, Cores: s.cores}
	switch format := q.Get("format"); format {
	case "", "table", "csv", "chart":
		opts.Format = format
	default:
		http.Error(w, fmt.Sprintf("unknown format %q (table, csv, chart)", format), http.StatusBadRequest)
		return
	}
	if v := q.Get("scale"); v != "" {
		scale, err := strconv.Atoi(v)
		if err != nil || scale < 1 {
			http.Error(w, "scale must be a positive integer", http.StatusBadRequest)
			return
		}
		opts.Scale = scale
	}
	if v := q.Get("pressures"); v != "" {
		plist, err := report.ParsePressures(v)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		opts.Pressures = plist
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
	defer cancel()
	// Render into a buffer so a mid-grid failure returns a clean error
	// instead of a truncated document.
	var buf strings.Builder
	start := time.Now()
	if err := report.Figure(ctx, &buf, app, opts); err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, context.DeadlineExceeded) {
			status = http.StatusGatewayTimeout
		}
		http.Error(w, err.Error(), status)
		return
	}
	elapsed := time.Since(start)
	s.archRuns.With("figure").Inc()
	s.archNanos.With("figure").Add(elapsed.Nanoseconds())
	s.runSeconds.Observe(elapsed.Seconds())
	if opts.Format == "csv" {
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	} else {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	}
	io.WriteString(w, buf.String()) //nolint:errcheck // client-side failure
}

func main() {
	flag.Parse()

	var cache *runcache.Cache
	var err error
	cache, err = runcache.New(*cacheSize, *cacheDir)
	if err != nil {
		log.Fatal(err)
	}
	s := newServer(cache, *jobs, *cores, *reqTimeout)

	if *smoke {
		if err := runSmoke(s); err != nil {
			log.Fatalf("smoke: %v", err)
		}
		fmt.Println("ascoma-serve smoke ok:", cache.Stats())
		return
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("ascoma-serve listening on %s (jobs=%d cache=%d entries, dir=%q)",
			*addr, *jobs, *cacheSize, *cacheDir)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Printf("ascoma-serve draining (up to %v)...", *drainWait)
	dctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		log.Fatalf("drain: %v", err)
	}
	log.Printf("ascoma-serve stopped; cache %s", cache.Stats())
}

// runSmoke starts the server on an ephemeral port, exercises /healthz, a
// figure (twice, asserting the second render simulates nothing new), and a
// run request, then drains. It is the make serve-smoke target.
func runSmoke(s *server) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: s.handler()}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	client := &http.Client{Timeout: 2 * time.Minute}

	get := func(url string) (string, error) {
		resp, err := client.Get(url)
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return "", err
		}
		if resp.StatusCode != http.StatusOK {
			return "", fmt.Errorf("GET %s: %s: %s", url, resp.Status, body)
		}
		return string(body), nil
	}

	if body, err := get(base + "/healthz"); err != nil {
		return err
	} else if !strings.Contains(body, "ok") {
		return fmt.Errorf("healthz: %q", body)
	}

	figURL := base + "/api/v1/figure/uniform?scale=16&pressures=10,90"
	if _, err := get(figURL); err != nil {
		return err
	}
	simsAfterFirst := s.cache.Stats().Sims
	body, err := get(figURL)
	if err != nil {
		return err
	}
	if !strings.Contains(body, "relative execution time") {
		return fmt.Errorf("figure body missing table: %q", body)
	}
	if sims := s.cache.Stats().Sims; sims != simsAfterFirst {
		return fmt.Errorf("second figure render simulated %d new runs, want 0", sims-simsAfterFirst)
	}

	resp, err := client.Post(base+"/api/v1/run", "application/json",
		strings.NewReader(`{"arch":"AS-COMA","workload":"uniform","pressure":70,"scale":16}`))
	if err != nil {
		return err
	}
	runBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST run: %s: %s", resp.Status, runBody)
	}
	if !strings.Contains(string(runBody), "execTimeCycles") {
		return fmt.Errorf("run body missing stats: %q", runBody)
	}

	metricsBody, err := get(base + "/metrics")
	if err != nil {
		return err
	}
	for _, want := range []string{
		`ascoma_requests_total{arch="AS-COMA"}`,
		"ascoma_runcache_sims_total",
		"ascoma_request_seconds_count",
		"ascoma_inflight_runs",
	} {
		if !strings.Contains(metricsBody, want) {
			return fmt.Errorf("metrics exposition missing %q:\n%s", want, metricsBody)
		}
	}

	dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		return err
	}
	if err := <-done; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
