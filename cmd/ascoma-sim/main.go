// Command ascoma-sim runs one simulation of a (architecture, workload,
// memory pressure) configuration and prints the execution-time breakdown
// and miss classification the paper's figures are built from.
//
// Usage:
//
//	ascoma-sim -arch ascoma -workload radix -pressure 70 [-scale 4] [-v]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"ascoma"
	"ascoma/internal/prof"
	"ascoma/internal/stats"
)

func main() {
	arch := flag.String("arch", "ascoma", "architecture: ccnuma, scoma, rnuma, vcnuma, ascoma, mignuma")
	wl := flag.String("workload", "radix", "workload: "+strings.Join(ascoma.Workloads(), ", "))
	pressure := flag.Int("pressure", 50, "memory pressure in percent (1-99)")
	scale := flag.Int("scale", 1, "problem-size divisor (1 = paper scale)")
	verbose := flag.Bool("v", false, "print per-node statistics")
	jsonOut := flag.Bool("json", false, "emit the full statistics as JSON")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	trace := flag.String("trace", "", "record a flight-recorder trace to this file (inspect with ascoma-inspect)")
	epoch := flag.Int64("epoch", 0, "with -trace, sample per-node epoch probes every N cycles (0 = events only)")
	cores := flag.Int("cores", 1, "worker threads inside the run (results are bit-identical at any count)")
	quantum := flag.Int64("quantum", 0, "cycles per node timeslice (0 = the 100-cycle default; changes simulated results)")
	tiers := flag.String("tiers", "", "memory tiers as capPct:readCycles:writeCycles,... fastest first (empty = flat memory)")
	pagePolicy := flag.String("pagepolicy", "", "DRAM row-buffer page policy: open, closed, hybrid (empty = off)")
	flag.Parse()

	a, err := ascoma.ParseArch(*arch)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	tierSpecs, err := ascoma.ParseTiers(*tiers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var rec *ascoma.Recording
	if *trace != "" {
		rec = ascoma.NewRecording(0, *epoch)
	} else if *epoch != 0 {
		fmt.Fprintln(os.Stderr, "ascoma-sim: -epoch requires -trace")
		os.Exit(2)
	}
	res, err := ascoma.Run(ascoma.Config{
		Arch:       a,
		Workload:   *wl,
		Pressure:   *pressure,
		Scale:      *scale,
		Quantum:    *quantum,
		Obs:        rec,
		Cores:      *cores,
		Tiers:      tierSpecs,
		PagePolicy: *pagePolicy,
	})
	if perr := stopProf(); perr != nil {
		fmt.Fprintln(os.Stderr, perr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if rec != nil {
		if err := ascoma.WriteTrace(*trace, rec); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "ascoma-sim: wrote %s (%d events recorded, %d epochs)\n",
			*trace, rec.Events.Total(), epochLen(rec))
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(stats.Report(res.Machine)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	fmt.Print(res.Report())

	if *verbose {
		t := &stats.Table{Header: []string{"node", "finish", "U-SH-MEM", "K-BASE", "K-OVERHD", "U-INSTR", "U-LC-MEM", "SYNC",
			"HOME", "SCOMA", "RAC", "COLD", "CONF/CAPC", "upgrades", "downgrades", "faults"}}
		for i := range res.Nodes {
			n := &res.Nodes[i]
			t.AddRow(i, n.FinishTime,
				n.Time[stats.UShMem], n.Time[stats.KBase], n.Time[stats.KOverhead],
				n.Time[stats.UInstr], n.Time[stats.ULcMem], n.Time[stats.Sync],
				n.Misses[stats.Home], n.Misses[stats.SComa], n.Misses[stats.RAC],
				n.Misses[stats.Cold], n.Misses[stats.ConfCapc],
				n.Upgrades, n.Downgrades, n.PageFaults)
		}
		fmt.Print(t.String())
	}
}

func epochLen(rec *ascoma.Recording) int {
	if rec.Epochs == nil {
		return 0
	}
	return rec.Epochs.Len()
}
