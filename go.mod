module ascoma

go 1.22
