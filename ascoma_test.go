package ascoma

import (
	"strings"
	"testing"

	"ascoma/internal/stats"
)

func TestRunQuickstart(t *testing.T) {
	res, err := Run(Config{Arch: ASCOMA, Workload: "uniform", Pressure: 50, Scale: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExecTime <= 0 {
		t.Error("no execution time")
	}
	if res.Workload != "uniform" || res.Pressure != 50 {
		t.Errorf("metadata: %q %d", res.Workload, res.Pressure)
	}
	if res.ArchID != ASCOMA {
		t.Errorf("ArchID = %v", res.ArchID)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(Config{Arch: ASCOMA, Workload: "bogus", Pressure: 50}); err == nil {
		t.Error("bogus workload accepted")
	}
	if _, err := Run(Config{Arch: ASCOMA, Workload: "uniform", Pressure: 0}); err == nil {
		t.Error("pressure 0 accepted")
	}
	if _, err := Run(Config{Arch: ASCOMA, Workload: "uniform", Pressure: 100}); err == nil {
		t.Error("pressure 100 accepted")
	}
}

func TestRunMaxCycles(t *testing.T) {
	_, err := Run(Config{Arch: CCNUMA, Workload: "uniform", Pressure: 50, Scale: 16, MaxCycles: 10})
	if err == nil {
		t.Error("MaxCycles not enforced")
	}
}

func TestReportContents(t *testing.T) {
	res, err := Run(Config{Arch: SCOMA, Workload: "hotcold", Pressure: 30, Scale: 16})
	if err != nil {
		t.Fatal(err)
	}
	r := res.Report()
	for _, want := range []string{"S-COMA", "hotcold", "pressure=30%", "U-SH-MEM", "K-OVERHD", "SCOMA=", "execution time"} {
		if !strings.Contains(r, want) {
			t.Errorf("report missing %q:\n%s", want, r)
		}
	}
}

func TestWorkloadsListed(t *testing.T) {
	names := Workloads()
	if len(names) < 6 {
		t.Errorf("only %d workloads", len(names))
	}
	for _, app := range []string{"barnes", "em3d", "fft", "lu", "ocean", "radix"} {
		found := false
		for _, n := range names {
			if n == app {
				found = true
			}
		}
		if !found {
			t.Errorf("%s missing from Workloads()", app)
		}
	}
}

func TestParseArchExported(t *testing.T) {
	a, err := ParseArch("as-coma")
	if err != nil || a != ASCOMA {
		t.Errorf("ParseArch = %v, %v", a, err)
	}
}

func TestDefaultParamsUsable(t *testing.T) {
	p := DefaultParams()
	res, err := Run(Config{Arch: CCNUMA, Workload: "stream", Pressure: 50, Scale: 16, Params: p})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExecTime == 0 {
		t.Error("no progress with explicit params")
	}
}

func TestAblationRequiresASCOMA(t *testing.T) {
	_, err := Run(Config{Arch: RNUMA, Workload: "uniform", Pressure: 50, Scale: 16,
		Ablation: AblationNoBackoff})
	if err == nil {
		t.Error("ablation accepted on a non-AS-COMA architecture")
	}
}

func TestAblationRuns(t *testing.T) {
	for _, ab := range []Ablation{AblationNoSCOMAAlloc, AblationNoBackoff} {
		res, err := Run(Config{Arch: ASCOMA, Workload: "uniform", Pressure: 70, Scale: 16, Ablation: ab})
		if err != nil {
			t.Fatalf("ablation %d: %v", ab, err)
		}
		if res.ExecTime == 0 {
			t.Errorf("ablation %d made no progress", ab)
		}
	}
}

func TestSamplesThroughPublicAPI(t *testing.T) {
	res, err := Run(Config{Arch: ASCOMA, Workload: "uniform", Pressure: 80, Scale: 16,
		SampleInterval: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) == 0 {
		t.Fatal("no samples recorded")
	}
	if res.Samples[0].Threshold < 1 {
		t.Error("sample threshold missing")
	}
}

func TestMIGNUMAThroughPublicAPI(t *testing.T) {
	res, err := Run(Config{Arch: MIGNUMA, Workload: "mismatch", Pressure: 50, Scale: 8})
	if err != nil {
		t.Fatal(err)
	}
	migs := res.Counter(func(n *stats.Node) int64 { return n.Migrations })
	if migs == 0 {
		t.Error("MIG-NUMA performed no migrations on mismatch")
	}
}
