package ascoma

import (
	"sync"
	"testing"

	"ascoma/internal/stats"
)

// The experiment tests guard the qualitative results of the paper's
// evaluation (Section 5) at a reduced problem scale, so regressions in the
// policies or the memory-system model show up as test failures. Absolute
// cycle counts are not asserted — only the orderings and rough factors the
// paper reports.

const expScale = 4 // problem-size divisor for the experiment tests

type expKey struct {
	arch     Arch
	app      string
	pressure int
}

var (
	expMu    sync.Mutex
	expCache = map[expKey]*Result{}
)

// exec runs (and memoizes) one configuration, returning execution time.
func exec(t *testing.T, arch Arch, app string, pressure int) int64 {
	t.Helper()
	return result(t, arch, app, pressure).ExecTime
}

func result(t *testing.T, arch Arch, app string, pressure int) *Result {
	t.Helper()
	k := expKey{arch, app, pressure}
	expMu.Lock()
	res, ok := expCache[k]
	expMu.Unlock()
	if ok {
		return res
	}
	res, err := Run(Config{Arch: arch, Workload: app, Pressure: pressure, Scale: expScale})
	if err != nil {
		t.Fatalf("%v/%s/%d%%: %v", arch, app, pressure, err)
	}
	expMu.Lock()
	expCache[k] = res
	expMu.Unlock()
	return res
}

// ratio returns exec(arch)/exec(CCNUMA); CC-NUMA is pressure-insensitive.
func ratio(t *testing.T, arch Arch, app string, pressure int) float64 {
	return float64(exec(t, arch, app, pressure)) / float64(exec(t, CCNUMA, app, 50))
}

// --- Figure 3: radix, the paper's stress case -------------------------------

func TestRadixLowPressureOrdering(t *testing.T) {
	// "At low memory pressures ... AS-COMA acts like S-COMA and
	// outperforms other hybrid architectures" (by up to 17% on radix);
	// hybrids and S-COMA all beat CC-NUMA.
	as := ratio(t, ASCOMA, "radix", 10)
	sc := ratio(t, SCOMA, "radix", 10)
	rn := ratio(t, RNUMA, "radix", 10)
	if as >= rn {
		t.Errorf("AS-COMA (%.2f) not better than R-NUMA (%.2f) at 10%%", as, rn)
	}
	if rn-as < 0.05*rn {
		t.Errorf("AS-COMA advantage over R-NUMA too small: %.2f vs %.2f", as, rn)
	}
	if as >= 1 || sc >= 1 || rn >= 1 {
		t.Errorf("low-pressure radix should beat CC-NUMA: as=%.2f sc=%.2f rn=%.2f", as, sc, rn)
	}
}

func TestRadixSCOMACollapses(t *testing.T) {
	// "the performance of pure S-COMA is 2.5 times worse than CC-NUMA's
	// at memory pressures as low as 30%".
	if r := ratio(t, SCOMA, "radix", 30); r < 2.0 {
		t.Errorf("S-COMA radix at 30%% only %.2fx CC-NUMA, want >= 2x", r)
	}
	if r90, r30 := ratio(t, SCOMA, "radix", 90), ratio(t, SCOMA, "radix", 30); r90 < r30 {
		t.Errorf("S-COMA improved with pressure: %.2f at 90%% vs %.2f at 30%%", r90, r30)
	}
}

func TestRadixASCOMAConvergesToCCNUMA(t *testing.T) {
	// "it remains within a few percent of CC-NUMA's performance" at high
	// pressure, while R-NUMA falls well below CC-NUMA.
	as := ratio(t, ASCOMA, "radix", 90)
	rn := ratio(t, RNUMA, "radix", 90)
	if as > 1.05 {
		t.Errorf("AS-COMA radix at 90%% is %.2fx CC-NUMA, want within ~5%%", as)
	}
	if rn < 1.08 {
		t.Errorf("R-NUMA radix at 90%% is %.2fx CC-NUMA, want visibly worse", rn)
	}
	if as >= rn {
		t.Errorf("AS-COMA (%.2f) not better than R-NUMA (%.2f) at 90%%", as, rn)
	}
}

func TestRadixVCNUMABetweenRNUMAAndASCOMA(t *testing.T) {
	// "VC-NUMA's backoff algorithm proves to be more effective than
	// R-NUMA's" but less so than AS-COMA's.
	as := exec(t, ASCOMA, "radix", 90)
	vc := exec(t, VCNUMA, "radix", 90)
	rn := exec(t, RNUMA, "radix", 90)
	if !(vc <= rn) {
		t.Errorf("VC-NUMA (%d) not better than R-NUMA (%d) at 90%%", vc, rn)
	}
	if float64(as) > 1.03*float64(vc) {
		t.Errorf("AS-COMA (%d) clearly worse than VC-NUMA (%d) at 90%%", as, vc)
	}
}

// --- Figure 2: barnes and em3d ----------------------------------------------

func TestBarnesHybridsBeatCCNUMA(t *testing.T) {
	// Hot dense remote working set: S-COMA-style caching wins at low
	// pressure ("AS-COMA, like S-COMA, outperforms CC-NUMA").
	if r := ratio(t, ASCOMA, "barnes", 10); r > 0.9 {
		t.Errorf("AS-COMA barnes at 10%% = %.2f, want well below 1", r)
	}
	if r := ratio(t, SCOMA, "barnes", 10); r > 0.9 {
		t.Errorf("S-COMA barnes at 10%% = %.2f", r)
	}
}

func TestBarnesRNUMAThrashesAtModeratePressure(t *testing.T) {
	// "R-NUMA ... is only able to break even by the time memory pressure
	// reaches 50%" and falls below CC-NUMA beyond, while AS-COMA keeps
	// its advantage.
	rn50 := ratio(t, RNUMA, "barnes", 50)
	rn70 := ratio(t, RNUMA, "barnes", 70)
	as50 := ratio(t, ASCOMA, "barnes", 50)
	as70 := ratio(t, ASCOMA, "barnes", 70)
	if rn50 < 0.93 {
		t.Errorf("R-NUMA barnes at 50%% = %.2f, want near break-even", rn50)
	}
	if rn70 < 1.0 {
		t.Errorf("R-NUMA barnes at 70%% = %.2f, want worse than CC-NUMA", rn70)
	}
	if as50 >= rn50 || as70 >= rn70 {
		t.Errorf("AS-COMA (%.2f, %.2f) not better than R-NUMA (%.2f, %.2f) on barnes",
			as50, as70, rn50, rn70)
	}
}

func TestEm3dHighPressureOrdering(t *testing.T) {
	// At 90%: AS-COMA ~CC-NUMA or better; R-NUMA worse than CC-NUMA;
	// VC-NUMA in between; S-COMA worst.
	as := ratio(t, ASCOMA, "em3d", 90)
	vc := ratio(t, VCNUMA, "em3d", 90)
	rn := ratio(t, RNUMA, "em3d", 90)
	sc := ratio(t, SCOMA, "em3d", 90)
	if as > 1.02 {
		t.Errorf("AS-COMA em3d at 90%% = %.2f, want <= ~1", as)
	}
	if !(as <= vc && vc <= rn) {
		t.Errorf("ordering broken at 90%%: as=%.2f vc=%.2f rn=%.2f", as, vc, rn)
	}
	if sc <= rn {
		t.Errorf("S-COMA (%.2f) should be the worst at 90%% (R-NUMA %.2f)", sc, rn)
	}
}

func TestEm3dLowPressureSCOMAWins(t *testing.T) {
	sc := ratio(t, SCOMA, "em3d", 10)
	as := ratio(t, ASCOMA, "em3d", 10)
	if sc > 0.9 || as > 0.9 {
		t.Errorf("em3d at 10%%: scoma=%.2f ascoma=%.2f, want clear wins", sc, as)
	}
	if as != sc {
		// AS-COMA's S-COMA-preferred allocation makes it identical to
		// pure S-COMA below the ideal pressure.
		t.Logf("note: AS-COMA (%.3f) and S-COMA (%.3f) differ slightly at low pressure", as, sc)
	}
}

// --- Figure 2/3: fft, ocean, lu ---------------------------------------------

func TestFFTHybridsMatchCCNUMA(t *testing.T) {
	// "only a tiny fraction of pages in fft are accessed enough to be
	// eligible for relocation, so all of the hybrid architectures
	// effectively become CC-NUMAs."
	for _, arch := range []Arch{RNUMA, VCNUMA, ASCOMA} {
		for _, p := range []int{10, 90} {
			if r := ratio(t, arch, "fft", p); r < 0.93 || r > 1.10 {
				t.Errorf("%v fft at %d%% = %.2f, want ~1.0", arch, p, r)
			}
		}
	}
}

func TestFFTRelocatesAlmostNothing(t *testing.T) {
	res := result(t, CCNUMA, "fft", 10)
	if res.RemotePages == 0 {
		t.Fatal("fft touched no remote pages")
	}
	frac := float64(res.RelocatedPages) / float64(res.RemotePages)
	if frac > 0.02 {
		t.Errorf("fft relocated fraction = %.1f%%, want < 2%% (Table 6: ~0%%)", 100*frac)
	}
}

func TestOceanInsensitive(t *testing.T) {
	// "all of the architectures other than pure S-COMA perform within a
	// few percent of one another" at every pressure.
	for _, arch := range []Arch{RNUMA, VCNUMA, ASCOMA} {
		for _, p := range []int{10, 90} {
			if r := ratio(t, arch, "ocean", p); r < 0.94 || r > 1.06 {
				t.Errorf("%v ocean at %d%% = %.2f, want within a few %%", arch, p, r)
			}
		}
	}
}

func TestLUHybridsWin(t *testing.T) {
	// "all of the hybrid architectures outperform CC-NUMA ... across all
	// memory pressures."
	for _, arch := range []Arch{RNUMA, VCNUMA, ASCOMA} {
		for _, p := range []int{10, 50} {
			if r := ratio(t, arch, "lu", p); r >= 1.0 {
				t.Errorf("%v lu at %d%% = %.2f, want < 1", arch, p, r)
			}
		}
	}
}

func TestLURelocatesEverything(t *testing.T) {
	// Table 6: lu's remote pages essentially all cross the threshold.
	res := result(t, CCNUMA, "lu", 10)
	if res.RemotePages == 0 {
		t.Fatal("lu touched no remote pages")
	}
	frac := float64(res.RelocatedPages) / float64(res.RemotePages)
	if frac < 0.85 {
		t.Errorf("lu relocated fraction = %.0f%%, want ~90%%+", 100*frac)
	}
}

// --- kernel-overhead attribution (Section 5.2's causal claim) --------------

func TestThrashingShowsUpAsKernelOverhead(t *testing.T) {
	// "Looking at the detailed breakdown of where time is spent, we can
	// see that increasing kernel overhead is the culprit."
	rn := result(t, RNUMA, "radix", 90)
	tsum := rn.SumTime()
	var total int64
	for _, v := range tsum {
		total += v
	}
	kov := float64(tsum[2]) / float64(total) // K-OVERHD
	if kov < 0.10 {
		t.Errorf("R-NUMA radix 90%%: K-OVERHD = %.1f%%, want substantial", 100*kov)
	}

	as := result(t, ASCOMA, "radix", 90)
	asum := as.SumTime()
	var atotal int64
	for _, v := range asum {
		atotal += v
	}
	akov := float64(asum[2]) / float64(atotal)
	if akov > kov/2 {
		t.Errorf("AS-COMA K-OVERHD (%.1f%%) not clearly below R-NUMA's (%.1f%%)", 100*akov, 100*kov)
	}
}

func TestCCNUMAPressureInsensitive(t *testing.T) {
	// "Only one result is shown for CC-NUMA, since it is not affected by
	// memory pressure."
	a := exec(t, CCNUMA, "em3d", 10)
	b := exec(t, CCNUMA, "em3d", 90)
	if a != b {
		t.Errorf("CC-NUMA exec differs across pressure: %d vs %d", a, b)
	}
}

func TestASCOMABackoffEngagesOnlyUnderPressure(t *testing.T) {
	lo := result(t, ASCOMA, "radix", 10)
	hi := result(t, ASCOMA, "radix", 90)
	loThrash := lo.Counter(func(n *stats.Node) int64 { return n.ThrashEvents })
	hiThrash := hi.Counter(func(n *stats.Node) int64 { return n.ThrashEvents })
	if loThrash != 0 {
		t.Errorf("thrash events at 10%% pressure: %d", loThrash)
	}
	if hiThrash == 0 {
		t.Error("no thrash events at 90% pressure")
	}
}
