package ascoma

// The golden-determinism regression test pins the simulator's observable
// behaviour: for every (architecture, application) pair at small scale it
// runs the simulation twice and checks that (a) both runs produce identical
// statistics (run-to-run determinism) and (b) the statistics match a
// checked-in checksum (release-to-release determinism). Any change to the
// simulator's internal data structures — hash maps to dense tables, added
// caches, reordered bookkeeping — must leave every checksum untouched, which
// proves the change altered no simulated behaviour: same event order, same
// stats, same figures.
//
// Regenerate testdata/golden_stats.json after an *intentional* model change
// with:
//
//	go test -run TestGoldenDeterminism -update-golden

import (
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_stats.json from the current simulator")

const goldenPath = "testdata/golden_stats.json"

// goldenScale shrinks problems so the full matrix runs in a few seconds.
const goldenScale = 8

// goldenConfigs enumerates the pinned (arch, app, pressure) grid. MIG-NUMA
// is included: the migration path touches every subsystem the hybrids do,
// plus the home-transfer machinery.
func goldenConfigs() []Config {
	apps := []string{"barnes", "em3d", "fft", "lu", "ocean", "radix"}
	archs := []Arch{CCNUMA, SCOMA, RNUMA, VCNUMA, ASCOMA, MIGNUMA}
	var cfgs []Config
	for _, app := range apps {
		for _, arch := range archs {
			for _, pr := range []int{10, 70} {
				cfgs = append(cfgs, Config{Arch: arch, Workload: app, Pressure: pr, Scale: goldenScale})
			}
		}
	}
	return cfgs
}

func goldenKey(cfg Config) string {
	return fmt.Sprintf("%v/%s@%d", cfg.Arch, cfg.Workload, cfg.Pressure)
}

// statsChecksum hashes the complete statistics of one run: every per-node
// counter, time category, miss classification, and the Table 6 aggregates.
func statsChecksum(t *testing.T, res *Result) string {
	t.Helper()
	blob, err := json.Marshal(res.Machine)
	if err != nil {
		t.Fatal(err)
	}
	h := fnv.New64a()
	h.Write(blob)
	return fmt.Sprintf("%016x", h.Sum64())
}

func TestGoldenDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("golden matrix skipped in -short mode")
	}
	got := map[string]string{}
	for _, cfg := range goldenConfigs() {
		key := goldenKey(cfg)
		first, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", key, err)
		}
		// The second run carries a flight recorder with epoch probes: its
		// checksum must equal the unobserved first run's, proving the
		// observability layer never perturbs simulated behaviour — across
		// the full 72-config matrix, recorder off and on.
		cfg.Obs = NewRecording(0, 10_000)
		second, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s (rerun): %v", key, err)
		}
		c1, c2 := statsChecksum(t, first), statsChecksum(t, second)
		if c1 != c2 {
			t.Errorf("%s: nondeterministic (or perturbed by the recorder): run1=%s run2=%s", key, c1, c2)
		}
		got[key] = c1
	}

	if *updateGolden {
		keys := make([]string, 0, len(got))
		for k := range got {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		ordered := make(map[string]string, len(got))
		for _, k := range keys {
			ordered[k] = got[k]
		}
		blob, err := json.MarshalIndent(ordered, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d checksums to %s", len(got), goldenPath)
		return
	}

	blob, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatal(err)
	}
	for key, w := range want {
		if g, ok := got[key]; !ok {
			t.Errorf("%s: config missing from test matrix", key)
		} else if g != w {
			t.Errorf("%s: stats checksum changed: got %s want %s", key, g, w)
		}
	}
	for key := range got {
		if _, ok := want[key]; !ok {
			t.Errorf("%s: not in golden file (run -update-golden)", key)
		}
	}
}
