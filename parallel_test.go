package ascoma

// The parallel simulation core (internal/machine/parallel.go, DESIGN.md
// §11) promises exactness, not approximate speedup: a run at any -cores
// value must be bit-identical to the sequential run — same event order,
// same statistics, same traces. These tests pin that promise against the
// same golden matrix that pins sequential determinism, so the parallel
// path can never drift behind the sequential one unnoticed.

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"

	"ascoma/internal/obs"
)

// TestParallelGoldenIdentity runs the full 72-config golden matrix at
// cores 1, 2, and 4 and checks every checksum against the pinned
// sequential values in testdata/golden_stats.json. cores=1 through the
// Config knob must take the sequential path exactly; cores>1 must commit
// the identical event order through the lookahead pipeline.
func TestParallelGoldenIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("golden matrix skipped in -short mode")
	}
	blob, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run TestGoldenDeterminism -update-golden to create): %v", err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatal(err)
	}
	for _, cfg := range goldenConfigs() {
		key := goldenKey(cfg)
		pinned, ok := want[key]
		if !ok {
			t.Fatalf("%s missing from golden file", key)
		}
		for _, cores := range []int{1, 2, 4} {
			cfg.Cores = cores
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("%s cores=%d: %v", key, cores, err)
			}
			if got := statsChecksum(t, res); got != pinned {
				t.Errorf("%s cores=%d: checksum %s != sequential golden %s", key, cores, got, pinned)
			}
		}
	}
}

// TestParallelIdentityShort is the -short slice of the identity matrix, so
// `go test -race -short ./...` always drives the parallel machinery — the
// fast-forward-heavy resident workload (arming succeeds almost every
// quantum) and a miss-bound paper config (arming mostly fails, stressing
// the stale-capture reconciliation path).
func TestParallelIdentityShort(t *testing.T) {
	cfgs := []Config{
		{Arch: ASCOMA, Workload: "resident", Pressure: 30, Scale: 1, Quantum: 1000},
		{Arch: ASCOMA, Workload: "ocean", Pressure: 70, Scale: 16},
		{Arch: MIGNUMA, Workload: "radix", Pressure: 70, Scale: 16},
	}
	for _, cfg := range cfgs {
		seq, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s/%v: %v", cfg.Workload, cfg.Arch, err)
		}
		cfg.Cores = 4
		par, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s/%v cores=4: %v", cfg.Workload, cfg.Arch, err)
		}
		if s, p := statsChecksum(t, seq), statsChecksum(t, par); s != p {
			t.Errorf("%s/%v: parallel checksum %s != sequential %s", cfg.Workload, cfg.Arch, p, s)
		}
		if seq.ExecTime != par.ExecTime {
			t.Errorf("%s/%v: exec %d != %d", cfg.Workload, cfg.Arch, par.ExecTime, seq.ExecTime)
		}
	}
}

// TestParallelTraceDeterminism pins the strongest observable property: a
// flight-recorder trace — every event, in order, with its cycle stamp —
// encodes byte-identically whether the run was sequential or parallel.
// Any reordering the lookahead pipeline introduced would change the blob
// even if the aggregate statistics happened to collide.
func TestParallelTraceDeterminism(t *testing.T) {
	for _, arch := range []Arch{ASCOMA, MIGNUMA} {
		cfg := Config{Arch: arch, Workload: "radix", Pressure: 70, Scale: 16}
		var blobs [][]byte
		for _, cores := range []int{1, 4} {
			rec := NewRecording(1<<12, 5000)
			cfg.Obs = rec
			cfg.Cores = cores
			if _, err := Run(cfg); err != nil {
				t.Fatalf("%v cores=%d: %v", arch, cores, err)
			}
			blobs = append(blobs, obs.AppendRecording(nil, rec))
		}
		if !bytes.Equal(blobs[0], blobs[1]) {
			t.Errorf("%v: parallel run encoded a different trace (%d vs %d bytes)",
				arch, len(blobs[0]), len(blobs[1]))
		}
	}
}
