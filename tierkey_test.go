package ascoma_test

// Backward-compatibility pin for the tiered-memory PR: a default config
// (Tiers nil, PagePolicy off) must serialize without any tier keys, so the
// content-addressed run-cache key of every pre-tier config is unchanged
// and existing caches stay warm. The hex keys below were captured from the
// seed build immediately before internal/mem landed.

import (
	"encoding/json"
	"strings"
	"testing"

	"ascoma"
	"ascoma/internal/runcache"
)

func TestDefaultConfigOmitsTierKeys(t *testing.T) {
	blob, err := json.Marshal(ascoma.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s := string(blob)
	if strings.Contains(s, "tiers") || strings.Contains(s, "pagePolicy") {
		t.Fatalf("default Config marshals tier fields: %s", s)
	}
}

func TestRuncacheKeysMatchSeed(t *testing.T) {
	pins := []struct {
		cfg  ascoma.Config
		want runcache.Key
	}{
		{
			ascoma.Config{Arch: ascoma.ASCOMA, Workload: "radix", Pressure: 70, Scale: 8},
			"ac27bf0567df536a4086bcbccfafd6a77793b34172743f9acc354ad5c048e6b0",
		},
		{
			ascoma.Config{Arch: ascoma.CCNUMA, Workload: "fft", Pressure: 50, Scale: 16},
			"6bbe079997df93dbae519ae048c409cca041bc31dec48b747b9df86ebf78aa1d",
		},
		{
			ascoma.Config{Arch: ascoma.SCOMA, Workload: "barnes", Pressure: 10, Scale: 8},
			"86652d23f7b23e69c938fd5b010ec867a2fa0f29c4043f64c22eed73b555b7fd",
		},
	}
	for _, pin := range pins {
		got, err := runcache.KeyOf(pin.cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got != pin.want {
			t.Errorf("%v/%s@%d: key %s, want seed key %s (a nil-tier config must hash identically to the seed)",
				pin.cfg.Arch, pin.cfg.Workload, pin.cfg.Pressure, got, pin.want)
		}
	}
	// Tiered configs must NOT collide with their flat counterparts.
	tiered := ascoma.Config{Arch: ascoma.ASCOMA, Workload: "radix", Pressure: 70, Scale: 8,
		Tiers: []ascoma.TierSpec{{CapacityPct: 30, ReadCycles: 40, WriteCycles: 60}, {CapacityPct: 70, ReadCycles: 120, WriteCycles: 300}}}
	tk, err := runcache.KeyOf(tiered)
	if err != nil {
		t.Fatal(err)
	}
	if tk == pins[0].want {
		t.Error("tiered config hashed to the flat seed key")
	}
}
