package ascoma_test

// The -cores knob must be invisible to the result cache: Config.Cores is
// excluded from the cache key (results are bit-identical at any core
// count), so a result simulated in parallel is a valid cache hit for a
// sequential request and vice versa. These tests pin both halves of that
// contract — key equality, and byte-identical recalled payloads.

import (
	"context"
	"testing"

	"ascoma"
	"ascoma/internal/runcache"
)

func TestParallelRunSharesCacheKey(t *testing.T) {
	base := ascoma.Config{Arch: ascoma.ASCOMA, Workload: "fft", Pressure: 70, Scale: 8}
	seqKey, err := runcache.KeyOf(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, cores := range []int{2, 4, 8} {
		cfg := base
		cfg.Cores = cores
		key, err := runcache.KeyOf(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if key != seqKey {
			t.Fatalf("cores=%d changes the cache key: %q != %q", cores, key, seqKey)
		}
	}
}

func TestParallelRunCachedPayloadIdentical(t *testing.T) {
	dir := t.TempDir()
	cfg := ascoma.Config{Arch: ascoma.ASCOMA, Workload: "ocean", Pressure: 70, Scale: 16, Cores: 4}

	// Simulate in parallel and persist through the cache's disk layer.
	warm, err := runcache.New(16, dir)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := (&runcache.Runner{Cache: warm}).Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	// A cold cache over the same directory, asked for the sequential
	// flavour of the same config, must answer from disk without
	// simulating — and the recalled statistics must hash identically to
	// both the parallel run that produced them and a from-scratch
	// sequential run.
	seq := cfg
	seq.Cores = 1
	cold, err := runcache.New(16, dir)
	if err != nil {
		t.Fatal(err)
	}
	recalled, err := (&runcache.Runner{Cache: cold}).Run(context.Background(), seq)
	if err != nil {
		t.Fatal(err)
	}
	if st := cold.Stats(); st.DiskHits != 1 || st.Sims != 0 {
		t.Fatalf("sequential request missed the parallel run's cache entry: %+v", st)
	}
	if got, want := goldenChecksum(t, recalled), goldenChecksum(t, parallel); got != want {
		t.Fatalf("recalled checksum %s != parallel checksum %s", got, want)
	}

	fresh, err := ascoma.Run(seq)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := goldenChecksum(t, fresh), goldenChecksum(t, parallel); got != want {
		t.Fatalf("sequential checksum %s != parallel checksum %s", got, want)
	}
}
