package ascoma

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (Section 4-5) as a testing.B benchmark:
//
//	Table 1  BenchmarkTable1OverheadModel   — remote-overhead model terms
//	Table 2  BenchmarkTable2StorageCost     — directory/page-cache state upkeep
//	Table 3  BenchmarkTable3CacheNetwork    — configured latency components
//	Table 4  BenchmarkTable4MinLatency      — measured hierarchy latencies
//	Table 5  BenchmarkTable5Workloads       — workload inventory generation
//	Table 6  BenchmarkTable6RelocatedPages  — remote vs relocated page counts
//	Fig 2    BenchmarkFig2{Barnes,Em3d,FFT} — arch x pressure grids
//	Fig 3    BenchmarkFig3{LU,Ocean,Radix}  — arch x pressure grids
//
// plus the ablation benchmarks for the two design choices DESIGN.md calls
// out (S-COMA-preferred allocation; replacement back-off) and micro
// benchmarks of the simulator itself. Figure benches report the relative
// execution times as custom metrics ("<arch>@<pressure>_rel"), so the
// benchmark output contains the same series the paper plots; run
// cmd/sweep for the full-resolution tables at paper scale.

import (
	"fmt"
	"testing"

	"ascoma/internal/addr"
	"ascoma/internal/cache"
	"ascoma/internal/directory"
	"ascoma/internal/estimate"
	"ascoma/internal/params"
	"ascoma/internal/sim"
	"ascoma/internal/stats"
	"ascoma/internal/workload"
)

// benchScale shrinks problems so the full harness runs in seconds.
const benchScale = 8

func benchRun(b *testing.B, arch Arch, app string, pressure int) *Result {
	b.Helper()
	res, err := Run(Config{Arch: arch, Workload: app, Pressure: pressure, Scale: benchScale})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// figureGrid runs the paper's architecture x pressure grid for one
// application and reports each cell's execution time relative to CC-NUMA.
func figureGrid(b *testing.B, app string, pressures []int) {
	b.ReportAllocs()
	var rel = map[string]float64{}
	var refs int64
	for i := 0; i < b.N; i++ {
		base := benchRun(b, CCNUMA, app, 50)
		refs = base.Counter(func(n *stats.Node) int64 { return n.SharedRefs + n.PrivateRefs })
		for _, arch := range []Arch{SCOMA, ASCOMA, VCNUMA, RNUMA} {
			for _, p := range pressures {
				r := benchRun(b, arch, app, p)
				rel[fmt.Sprintf("%v@%d_rel", arch, p)] = float64(r.ExecTime) / float64(base.ExecTime)
			}
		}
	}
	for k, v := range rel {
		b.ReportMetric(v, k)
	}
	b.ReportMetric(float64(refs), "refs/run")
}

// --- Figure 2: barnes, em3d, fft --------------------------------------------

func BenchmarkFig2Barnes(b *testing.B) { figureGrid(b, "barnes", []int{10, 50, 70}) }
func BenchmarkFig2Em3d(b *testing.B)   { figureGrid(b, "em3d", []int{10, 70, 90}) }
func BenchmarkFig2FFT(b *testing.B)    { figureGrid(b, "fft", []int{10, 70, 90}) }

// --- Figure 3: lu, ocean, radix ---------------------------------------------

func BenchmarkFig3LU(b *testing.B)    { figureGrid(b, "lu", []int{10, 70, 90}) }
func BenchmarkFig3Ocean(b *testing.B) { figureGrid(b, "ocean", []int{10, 70, 90}) }
func BenchmarkFig3Radix(b *testing.B) { figureGrid(b, "radix", []int{10, 30, 90}) }

// --- Table 1: the remote-overhead model on live statistics ------------------

func BenchmarkTable1OverheadModel(b *testing.B) {
	b.ReportAllocs()
	p := DefaultParams()
	var model float64
	for i := 0; i < b.N; i++ {
		res := benchRun(b, RNUMA, "radix", 70)
		m := res.SumMisses()
		tsum := res.SumTime()
		npc := m[stats.SComa]
		nrem := m[stats.Cold] + m[stats.ConfCapc]
		model = float64(npc*(p.BusCycles+p.LocalMemCycles) + nrem*p.RemoteMemCycles() + tsum[stats.KOverhead])
	}
	b.ReportMetric(model, "model_cycles")
}

// --- Table 2: storage-state upkeep -------------------------------------------

// BenchmarkTable2StorageCost measures the directory-state machinery the
// table prices out: per-block copyset/refetch bookkeeping on every fetch.
func BenchmarkTable2StorageCost(b *testing.B) {
	b.ReportAllocs()
	d := directory.New(8, 0, 32, func(int, addr.Block) {}, func(int, addr.Block, bool) {})
	page := addr.PageOf(addr.SharedBase)
	d.ForceHome(page, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk := page.BlockAt(i % params.BlocksPerPage)
		d.Fetch(1+i%7, blk, i%8 == 0, false)
	}
}

// --- Table 3: configured characteristics (latency composition) --------------

func BenchmarkTable3CacheNetwork(b *testing.B) {
	b.ReportAllocs()
	p := DefaultParams()
	b.ReportMetric(float64(p.L1HitCycles), "L1_cycles")
	b.ReportMetric(float64(p.RACHitCycles), "RAC_cycles")
	b.ReportMetric(float64(p.BusCycles+p.LocalMemCycles), "local_cycles")
	b.ReportMetric(float64(p.RemoteMemCycles()), "remote_cycles")
	// Exercise the L1 lookup/insert fast path the table's hit latency
	// prices.
	l1 := cache.NewL1(p.L1Bytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := addr.Line(i & 1023)
		if !l1.Lookup(l, false) {
			l1.Insert(l, false)
		}
	}
}

// --- Table 4: measured minimum latencies -------------------------------------

func BenchmarkTable4MinLatency(b *testing.B) {
	b.ReportAllocs()
	// A two-node machine with one remote read measures the end-to-end
	// minimum remote latency including every modeled component.
	var remote float64
	for i := 0; i < b.N; i++ {
		res := benchRun(b, CCNUMA, "stream", 50)
		misses := res.RemoteMisses()
		var stall int64
		for j := range res.Nodes {
			stall += res.Nodes[j].Time[stats.UShMem]
		}
		if misses > 0 {
			remote = float64(stall) / float64(misses)
		}
	}
	b.ReportMetric(remote, "stall_per_remote_miss")
	p := DefaultParams()
	b.ReportMetric(float64(p.RemoteMemCycles()), "uncontended_min")
}

// --- Table 5: workload inventory ---------------------------------------------

func BenchmarkTable5Workloads(b *testing.B) {
	b.ReportAllocs()
	// Generation + placement of all six applications: the cost of
	// materializing Table 5's inventory.
	var pages int
	for i := 0; i < b.N; i++ {
		pages = 0
		for _, name := range []string{"barnes", "em3d", "fft", "lu", "ocean", "radix"} {
			g, err := workload.New(name, benchScale)
			if err != nil {
				b.Fatal(err)
			}
			g.Place(func(addr.Page, int) { pages++ })
			s := g.Stream(0)
			for {
				if _, ok := s.Next(); !ok {
					break
				}
			}
		}
	}
	b.ReportMetric(float64(pages), "placed_pages")
}

// --- Table 6: remote vs relocated pages --------------------------------------

func BenchmarkTable6RelocatedPages(b *testing.B) {
	b.ReportAllocs()
	var remote, relocated int64
	for i := 0; i < b.N; i++ {
		remote, relocated = 0, 0
		for _, name := range []string{"fft", "radix"} { // the two extremes
			res := benchRun(b, CCNUMA, name, 10)
			remote += res.RemotePages
			relocated += res.RelocatedPages
		}
	}
	b.ReportMetric(float64(remote), "remote_pages")
	b.ReportMetric(float64(relocated), "relocated_pages")
}

// --- Ablations: the two AS-COMA improvements in isolation --------------------

// BenchmarkAblationInitialAlloc isolates improvement 1 (Section 5.1): at
// low memory pressure, S-COMA-preferred allocation versus starting every
// page in CC-NUMA mode.
func BenchmarkAblationInitialAlloc(b *testing.B) {
	b.ReportAllocs()
	var full, ablated float64
	for i := 0; i < b.N; i++ {
		base := benchRun(b, CCNUMA, "radix", 50)
		f := benchRun(b, ASCOMA, "radix", 10)
		a, err := Run(Config{Arch: ASCOMA, Workload: "radix", Pressure: 10,
			Scale: benchScale, Ablation: AblationNoSCOMAAlloc})
		if err != nil {
			b.Fatal(err)
		}
		full = float64(f.ExecTime) / float64(base.ExecTime)
		ablated = float64(a.ExecTime) / float64(base.ExecTime)
	}
	b.ReportMetric(full, "full_rel")
	b.ReportMetric(ablated, "no_alloc_rel")
}

// BenchmarkAblationBackoff isolates improvement 2 (Section 5.2): at high
// memory pressure, the adaptive back-off versus R-NUMA-style relocation.
func BenchmarkAblationBackoff(b *testing.B) {
	b.ReportAllocs()
	var full, ablated float64
	for i := 0; i < b.N; i++ {
		base := benchRun(b, CCNUMA, "radix", 50)
		f := benchRun(b, ASCOMA, "radix", 90)
		a, err := Run(Config{Arch: ASCOMA, Workload: "radix", Pressure: 90,
			Scale: benchScale, Ablation: AblationNoBackoff})
		if err != nil {
			b.Fatal(err)
		}
		full = float64(f.ExecTime) / float64(base.ExecTime)
		ablated = float64(a.ExecTime) / float64(base.ExecTime)
	}
	b.ReportMetric(full, "full_rel")
	b.ReportMetric(ablated, "no_backoff_rel")
}

// BenchmarkSensitivityThreshold sweeps the relocation threshold for R-NUMA
// and AS-COMA: the static policy's performance hinges on the value, the
// adaptive policy's does not (run cmd/sweep -sensitivity threshold for the
// full table).
func BenchmarkSensitivityThreshold(b *testing.B) {
	b.ReportAllocs()
	metrics := map[string]float64{}
	for i := 0; i < b.N; i++ {
		base := benchRun(b, CCNUMA, "radix", 70)
		for _, th := range []int{8, 32, 128} {
			p := DefaultParams()
			p.RefetchThreshold = th
			for _, arch := range []Arch{RNUMA, ASCOMA} {
				res, err := Run(Config{Arch: arch, Workload: "radix", Pressure: 70,
					Scale: benchScale, Params: p})
				if err != nil {
					b.Fatal(err)
				}
				metrics[fmt.Sprintf("%v@th%d_rel", arch, th)] =
					float64(res.ExecTime) / float64(base.ExecTime)
			}
		}
	}
	for k, v := range metrics {
		b.ReportMetric(v, k)
	}
}

// BenchmarkSensitivityRACSize sweeps the remote access cache size on fft
// (run cmd/sweep -sensitivity rac for the full table).
func BenchmarkSensitivityRACSize(b *testing.B) {
	b.ReportAllocs()
	metrics := map[string]float64{}
	for i := 0; i < b.N; i++ {
		for _, entries := range []int{0, 1, 4} {
			p := DefaultParams()
			p.RACEntries = entries
			res, err := Run(Config{Arch: CCNUMA, Workload: "fft", Pressure: 50,
				Scale: benchScale, Params: p})
			if err != nil {
				b.Fatal(err)
			}
			metrics[fmt.Sprintf("rac%d_cycles", entries)] = float64(res.ExecTime)
		}
	}
	for k, v := range metrics {
		b.ReportMetric(v, k)
	}
}

// --- parallel core scaling ----------------------------------------------------

// benchParallelScaling is one full run at a fixed worker count over the
// fast-forward-heavy resident workload (L1 hit rate ~99.7%, quantum 1000):
// nearly every quantum arms a lookahead scan, so wall-clock tracks the scan
// production rate — the quantity the parallel core parallelizes. Compare
// across the cores axis with benchstat (see README.md, "Benchmarking"); on
// a single-core host cores>1 measures pure pipeline overhead instead of
// speedup, which BENCH_PR6.json records explicitly.
func benchParallelScaling(b *testing.B, cores int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := Run(Config{Arch: ASCOMA, Workload: "resident", Pressure: 30,
			Scale: 1, Quantum: 1000, Cores: cores})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParallelScaling1(b *testing.B) { benchParallelScaling(b, 1) }
func BenchmarkParallelScaling2(b *testing.B) { benchParallelScaling(b, 2) }
func BenchmarkParallelScaling4(b *testing.B) { benchParallelScaling(b, 4) }
func BenchmarkParallelScaling8(b *testing.B) { benchParallelScaling(b, 8) }

// BenchmarkParallelMissBound is the other end of the spectrum: a miss-bound
// paper config where arming mostly fails and the parallel core must cost
// (near) nothing over the sequential loop.
func BenchmarkParallelMissBound(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := Run(Config{Arch: ASCOMA, Workload: "ocean", Pressure: 70,
			Scale: benchScale, Cores: 4})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// --- simulator micro benchmarks ----------------------------------------------

// BenchmarkSimulatorThroughput measures end-to-end simulated references per
// second, the simulator's own figure of merit.
func BenchmarkSimulatorThroughput(b *testing.B) {
	b.ReportAllocs()
	var refs int64
	for i := 0; i < b.N; i++ {
		res := benchRun(b, ASCOMA, "uniform", 50)
		refs = res.Counter(func(n *stats.Node) int64 { return n.SharedRefs + n.PrivateRefs })
	}
	b.ReportMetric(float64(refs), "refs/op")
}

func BenchmarkEventQueue(b *testing.B) {
	b.ReportAllocs()
	var q sim.Queue
	for i := 0; i < b.N; i++ {
		q.Push(sim.Event{Time: int64(i % 97)})
		if q.Len() > 64 {
			q.Pop()
		}
	}
}

// BenchmarkHotPath is the simulator's per-reference figure of merit: one
// full AS-COMA run over the uniform synthetic workload per iteration,
// reported as simulated references per wall-clock second. Together with
// allocs/op (every run's transient state counts against it) this is the
// number recorded before/after hot-path changes in BENCH_PR1.json.
func BenchmarkHotPath(b *testing.B) {
	b.ReportAllocs()
	var refs int64
	for i := 0; i < b.N; i++ {
		res := benchRun(b, ASCOMA, "uniform", 50)
		refs += res.Counter(func(n *stats.Node) int64 { return n.SharedRefs + n.PrivateRefs })
	}
	b.ReportMetric(float64(refs)/b.Elapsed().Seconds(), "refs/sec")
}

// BenchmarkHotPathTiered is BenchmarkHotPath on asymmetric two-tier
// memory with the hybrid row-buffer policy: the delta against
// BenchmarkHotPath is the full cost of tier resolution, row-buffer state,
// and promotion/demotion bookkeeping on the per-reference path.
func BenchmarkHotPathTiered(b *testing.B) {
	b.ReportAllocs()
	tiers := []TierSpec{
		{CapacityPct: 30, ReadCycles: 40, WriteCycles: 60},
		{CapacityPct: 70, ReadCycles: 120, WriteCycles: 300},
	}
	var refs int64
	for i := 0; i < b.N; i++ {
		res, err := Run(Config{Arch: ASCOMA, Workload: "uniform", Pressure: 50,
			Scale: benchScale, Tiers: tiers, PagePolicy: "hybrid"})
		if err != nil {
			b.Fatal(err)
		}
		refs += res.Counter(func(n *stats.Node) int64 { return n.SharedRefs + n.PrivateRefs })
	}
	b.ReportMetric(float64(refs)/b.Elapsed().Seconds(), "refs/sec")
}

// BenchmarkHotPathRecorded is BenchmarkHotPath with a live flight recorder
// and epoch probes attached: the delta against BenchmarkHotPath is the
// full observability overhead. The recorder is preallocated outside the
// timed loop, so allocs/op should match the unrecorded benchmark — every
// Emit lands in the fixed ring and every epoch sample in the fixed series.
func BenchmarkHotPathRecorded(b *testing.B) {
	b.ReportAllocs()
	rec := NewRecording(1<<14, 10_000)
	var refs int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Events.Reset()
		res, err := Run(Config{Arch: ASCOMA, Workload: "uniform", Pressure: 50,
			Scale: benchScale, Obs: rec})
		if err != nil {
			b.Fatal(err)
		}
		refs += res.Counter(func(n *stats.Node) int64 { return n.SharedRefs + n.PrivateRefs })
	}
	b.ReportMetric(float64(refs)/b.Elapsed().Seconds(), "refs/sec")
	b.ReportMetric(float64(rec.Events.Total()), "events/run")
}

// BenchmarkGridRow runs one application across the full pressure row of a
// figure grid with no result cache: every cell builds its own machine and
// workload, so allocs/op measures the per-cell construction overhead that
// compiled-workload sharing and the machine arena exist to remove.
func BenchmarkGridRow(b *testing.B) {
	b.ReportAllocs()
	pressures := []int{10, 20, 30, 40, 50, 60, 70, 80, 90}
	for i := 0; i < b.N; i++ {
		for _, pr := range pressures {
			benchRun(b, ASCOMA, "fft", pr)
		}
	}
}

// BenchmarkEstimate is BenchmarkGridRow's analytical twin: the same
// nine-pressure AS-COMA row over fft, answered by internal/estimate's
// steady-state model instead of simulation. Predict is allocation-free
// (the //ascoma:hotpath contract), so allocs/op must stay 0 and ns/op
// divided by nine is the per-cell prediction cost — the number
// BENCH_PR8.json tracks against BenchmarkGridRow's per-cell simulation
// cost (>=100x apart). Estimator construction (one stream replay per
// workload) happens once outside the timed loop, the same amortization
// screening gets in practice.
func BenchmarkEstimate(b *testing.B) {
	b.ReportAllocs()
	prof, err := workload.ProfileFor("fft", benchScale)
	if err != nil {
		b.Fatal(err)
	}
	est, err := estimate.New(prof, DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	pressures := []int{10, 20, 30, 40, 50, 60, 70, 80, 90}
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, pr := range pressures {
			p := est.Predict(ASCOMA, pr)
			sink += p.RelTime
		}
	}
	b.ReportMetric(sink/float64(b.N*len(pressures)), "mean_rel")
}

// BenchmarkEstimateProfile prices estimator construction on the path
// screening and the serve endpoint actually take: ProfileFor memoizes
// the stream-replay profile per workload+scale, so after the first cold
// build (one replay, amortized across a process) each construction is a
// memo lookup plus the per-node weight computation in estimate.New.
func BenchmarkEstimateProfile(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		prof, err := workload.ProfileFor("fft", benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := estimate.New(prof, DefaultParams()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStreamGeneration(b *testing.B) {
	b.ReportAllocs()
	g, err := workload.New("radix", benchScale)
	if err != nil {
		b.Fatal(err)
	}
	g.Place(func(addr.Page, int) {})
	b.ResetTimer()
	n := 0
	s := g.Stream(0)
	for i := 0; i < b.N; i++ {
		r, ok := s.Next()
		if !ok {
			s = g.Stream(n % 8)
			n++
			continue
		}
		_ = r
	}
}
