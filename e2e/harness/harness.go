// Package harness builds in-process ascoma-serve farms for end-to-end
// tests: N workers, each a real serve.Server behind a real HTTP listener,
// wired as cache peers (full mesh over the /cache/v1 protocol) and/or over
// a shared disk directory. The e2e suite and the load test drive realistic
// job mixes through it and assert on each worker's cache counters and
// /metrics exposition.
package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"ascoma/internal/jobs"
	"ascoma/internal/runcache"
	"ascoma/internal/serve"
)

// Options shapes a Cluster. The zero value of every field selects a
// sensible test default.
type Options struct {
	// Workers is the number of servers (default 2).
	Workers int
	// Peers wires every worker's cache to every other worker over the
	// /cache/v1 protocol.
	Peers bool
	// CacheDir, when non-empty, gives every worker the same disk layer —
	// the shared-directory deployment mode.
	CacheDir string
	// CacheSize bounds each worker's memory LRU (default 1024).
	CacheSize int
	// Jobs bounds each worker's concurrent simulations (default 4).
	Jobs int
	// JobOpts tunes each worker's async job manager.
	JobOpts jobs.Options
}

// Cluster is a running in-process farm. Close it when done.
type Cluster struct {
	servers []*serve.Server
	https   []*httptest.Server
	client  *http.Client
}

// New starts the cluster. The listeners exist before any server starts, so
// peer URLs are known when each worker's cache is built.
func New(opts Options) (*Cluster, error) {
	n := opts.Workers
	if n < 1 {
		n = 2
	}
	if opts.Jobs < 1 {
		opts.Jobs = 4
	}
	https := make([]*httptest.Server, n)
	urls := make([]string, n)
	for i := range https {
		https[i] = httptest.NewUnstartedServer(nil)
		urls[i] = "http://" + https[i].Listener.Addr().String()
	}
	cl := &Cluster{https: https, client: &http.Client{Timeout: 2 * time.Minute}}
	for i := 0; i < n; i++ {
		var backends []runcache.Backend
		if opts.CacheDir != "" {
			disk, err := runcache.NewDiskBackend(opts.CacheDir)
			if err != nil {
				cl.Close()
				return nil, err
			}
			backends = append(backends, disk)
		}
		if opts.Peers {
			for j := 0; j < n; j++ {
				if j != i {
					backends = append(backends, runcache.NewHTTPBackend(urls[j], cl.client))
				}
			}
		}
		s := serve.New(serve.Config{
			Cache:   runcache.NewWithBackends(opts.CacheSize, backends...),
			Jobs:    opts.Jobs,
			Cores:   1,
			Timeout: 2 * time.Minute,
			JobOpts: opts.JobOpts,
		})
		cl.servers = append(cl.servers, s)
		https[i].Config.Handler = s.Handler()
		https[i].Start()
	}
	return cl, nil
}

// Close stops every worker.
func (c *Cluster) Close() {
	for _, ts := range c.https {
		ts.CloseClientConnections()
		ts.Close()
	}
	for _, s := range c.servers {
		s.Close()
	}
}

// Workers returns the cluster size.
func (c *Cluster) Workers() int { return len(c.servers) }

// URL returns worker i's base URL.
func (c *Cluster) URL(i int) string { return c.https[i].URL }

// Server returns worker i's serve.Server (for cache-counter assertions).
func (c *Cluster) Server(i int) *serve.Server { return c.servers[i] }

// Get fetches a path from worker i, requiring 200.
func (c *Cluster) Get(i int, path string) (string, error) {
	resp, err := c.client.Get(c.URL(i) + path)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s on worker %d: %s: %s", path, i, resp.Status, body)
	}
	return string(body), nil
}

// Metrics returns worker i's /metrics exposition.
func (c *Cluster) Metrics(i int) (string, error) { return c.Get(i, "/metrics") }

// SubmitJob posts a job spec to worker i and returns the accepted status.
func (c *Cluster) SubmitJob(i int, spec string) (jobs.Status, error) {
	resp, err := c.client.Post(c.URL(i)+"/api/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		return jobs.Status{}, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return jobs.Status{}, err
	}
	if resp.StatusCode != http.StatusAccepted {
		return jobs.Status{}, fmt.Errorf("POST jobs on worker %d: %s: %s", i, resp.Status, body)
	}
	var st jobs.Status
	if err := json.Unmarshal(body, &st); err != nil {
		return jobs.Status{}, fmt.Errorf("job submit response: %w: %s", err, body)
	}
	return st, nil
}

// JobStatus polls worker i for one job's status.
func (c *Cluster) JobStatus(i int, id string) (jobs.Status, error) {
	body, err := c.Get(i, "/api/v1/jobs/"+id)
	if err != nil {
		return jobs.Status{}, err
	}
	var st jobs.Status
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		return jobs.Status{}, fmt.Errorf("job status: %w: %s", err, body)
	}
	return st, nil
}

// WaitJob polls worker i until the job is terminal (bounded by timeout).
func (c *Cluster) WaitJob(i int, id string, timeout time.Duration) (jobs.Status, error) {
	deadline := time.Now().Add(timeout)
	for {
		st, err := c.JobStatus(i, id)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		if time.Now().After(deadline) {
			return st, fmt.Errorf("job %s on worker %d stuck in %s after %v", id, i, st.State, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
