// Package e2e drives multi-worker ascoma-serve farms end to end: real HTTP
// listeners, the async job API, and the shared content-addressed result
// store — over the /cache/v1 peer protocol and over a shared disk
// directory. `make e2e` runs the full suite; the hundreds-of-jobs load
// test skips under -short.
package e2e

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"ascoma/e2e/harness"
	"ascoma/internal/jobs"
)

// gridSpec expands to the figure grid for one app: CC-NUMA@50 plus the
// four adaptive architectures at both pressures — 9 cells, exactly what a
// later figure render with the same knobs reads.
const gridSpec = `{"grid":{"apps":["uniform"],"pressures":[10,90],"scale":16}}`
const gridCells = 9
const figurePath = "/api/v1/figure/uniform?scale=16&pressures=10,90"

// TestFarmSharesCacheOverPeers is the acceptance path: a grid submitted to
// worker A renders as a figure on worker B with zero new simulations — B
// pulls every cell from A over the peer protocol — and B's /metrics
// reports the hit rate.
func TestFarmSharesCacheOverPeers(t *testing.T) {
	cl, err := harness.New(harness.Options{Workers: 2, Peers: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	st, err := cl.SubmitJob(0, gridSpec)
	if err != nil {
		t.Fatal(err)
	}
	final, err := cl.WaitJob(0, st.ID, 2*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != jobs.StateDone || final.CellsDone != gridCells {
		t.Fatalf("grid job on worker A: %+v", final)
	}
	simsA := cl.Server(0).Cache().Stats().Sims
	if simsA != gridCells {
		t.Fatalf("worker A simulated %d cells, want %d", simsA, gridCells)
	}

	if _, err := cl.Get(1, figurePath); err != nil {
		t.Fatal(err)
	}
	stB := cl.Server(1).Cache().Stats()
	if stB.Sims != 0 {
		t.Errorf("worker B simulated %d cells for a grid worker A already ran", stB.Sims)
	}
	if stB.RemoteHits != gridCells {
		t.Errorf("worker B remote hits = %d, want %d", stB.RemoteHits, gridCells)
	}
	if got := cl.Server(0).Cache().Stats().Sims; got != simsA {
		t.Errorf("worker B's render triggered %d new sims on worker A", got-simsA)
	}

	metrics, err := cl.Metrics(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"ascoma_runcache_sims_total 0",
		fmt.Sprintf("ascoma_runcache_remote_hits_total %d", gridCells),
		"ascoma_runcache_hit_ratio 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("worker B metrics missing %q:\n%s", want, metrics)
		}
	}

	// And the reverse direction: a run B has cached serves A remotely.
	simsB := cl.Server(1).Cache().Stats().Sims
	if _, err := cl.Get(0, figurePath); err != nil {
		t.Fatal(err)
	}
	if got := cl.Server(1).Cache().Stats().Sims; got != simsB {
		t.Errorf("worker A's render triggered sims on worker B")
	}
	if got := cl.Server(0).Cache().Stats().Sims; got != simsA {
		t.Errorf("worker A re-simulated its own grid: %d new sims", got-simsA)
	}
}

// TestFarmSharesCacheOverDisk covers the shared-directory deployment: no
// peer wiring, both workers mount the same cache dir, and worker B's
// figure render is pure disk hits.
func TestFarmSharesCacheOverDisk(t *testing.T) {
	cl, err := harness.New(harness.Options{Workers: 2, CacheDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	st, err := cl.SubmitJob(0, gridSpec)
	if err != nil {
		t.Fatal(err)
	}
	if final, err := cl.WaitJob(0, st.ID, 2*time.Minute); err != nil || final.State != jobs.StateDone {
		t.Fatalf("grid job: %+v, %v", final, err)
	}
	if _, err := cl.Get(1, figurePath); err != nil {
		t.Fatal(err)
	}
	stB := cl.Server(1).Cache().Stats()
	if stB.Sims != 0 || stB.DiskHits != gridCells {
		t.Errorf("worker B over shared disk: %+v, want %d disk hits and 0 sims", stB, gridCells)
	}
}

// TestFarmLoad proves the farm under hundreds of concurrent jobs: a
// realistic mix (repeated run specs plus a few grids) fanned across both
// workers, every job completing, and the cluster-wide hit rate reflecting
// that distinct configurations — not requests — cost simulations.
func TestFarmLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("load test skipped in short mode")
	}
	cl, err := harness.New(harness.Options{Workers: 2, Peers: true, Jobs: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	archs := []string{"CC-NUMA", "S-COMA", "AS-COMA", "V-C-NUMA", "R-NUMA"}
	pressures := []int{10, 30, 50, 70, 90}
	const runJobs = 300
	specs := make([]string, 0, runJobs+2)
	for i := 0; i < runJobs; i++ {
		specs = append(specs, fmt.Sprintf(
			`{"run":{"arch":%q,"workload":"uniform","pressure":%d,"scale":32}}`,
			archs[i%len(archs)], pressures[(i/len(archs))%len(pressures)]))
	}
	// A couple of grid jobs ride along; their cells overlap the run specs'
	// key space at a different scale, so they add distinct work.
	specs = append(specs,
		`{"grid":{"apps":["uniform"],"pressures":[10,90],"scale":16}}`,
		`{"grid":{"apps":["uniform"],"pressures":[10,90],"scale":16}}`)

	type submitted struct {
		worker int
		id     string
	}
	subs := make([]submitted, len(specs))
	var wg sync.WaitGroup
	errs := make(chan error, len(specs))
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec string) {
			defer wg.Done()
			w := i % cl.Workers()
			st, err := cl.SubmitJob(w, spec)
			if err != nil {
				errs <- err
				return
			}
			subs[i] = submitted{worker: w, id: st.ID}
		}(i, spec)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	for _, sub := range subs {
		final, err := cl.WaitJob(sub.worker, sub.id, 2*time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		if final.State != jobs.StateDone {
			t.Fatalf("job %s on worker %d: %+v", sub.id, sub.worker, final)
		}
	}

	// 25 distinct run configs + 9 distinct grid cells; each worker can
	// simulate a config at most once (local singleflight), and peer hits
	// should keep the real number below even that. The worst case — every
	// distinct config simulated independently on both workers — still
	// leaves each worker's hit rate at 1 - 34/159 ≈ 0.79.
	const distinct = 25 + 9
	var sims int64
	for i := 0; i < cl.Workers(); i++ {
		st := cl.Server(i).Cache().Stats()
		sims += st.Sims
		if rate := st.HitRate(); rate < 0.75 {
			t.Errorf("worker %d hit rate %.2f under load (%+v)", i, rate, st)
		}
	}
	if sims > 2*distinct {
		t.Errorf("cluster simulated %d times for %d distinct configs", sims, distinct)
	}
	// The farm drained: no live jobs, and the submission counters add up.
	for i := 0; i < cl.Workers(); i++ {
		metrics, err := cl.Metrics(i)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(metrics, "ascoma_jobs_live 0") {
			t.Errorf("worker %d still reports live jobs after drain", i)
		}
	}
}
